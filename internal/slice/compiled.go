package slice

import (
	"fmt"
	"math"
	"strings"

	"acr/internal/isa"
)

// COp is one instruction of a compiled Slice. Operand fields index the
// evaluation slot array: slots [0, NumInputs) hold buffered inputs, slot
// NumInputs+j holds the result of op j. -1 marks an unused operand.
type COp struct {
	Op      isa.Op
	A, B, C int32
	Imm     int64
}

// Compiled is a standalone, embeddable Slice: the object the paper's
// compiler pass bakes into the binary, together with the snapshot of its
// input operands captured by ASSOC-ADDR into the input-operand buffer
// (paper §II-B). It is immutable after construction and independent of the
// Tracker arena.
type Compiled struct {
	// Inputs are the buffered input operand values, in slot order.
	Inputs []int64
	// Ops are the Slice instructions in dependence (topological) order.
	// The value produced by the last op is the recomputed value.
	Ops []COp
}

// Len returns the Slice length in instructions — the quantity the paper's
// threshold gates on (§III-A).
func (c *Compiled) Len() int { return len(c.Ops) }

// NumInputs returns the number of buffered input operands.
func (c *Compiled) NumInputs() int { return len(c.Inputs) }

// FloatOps and IntOps split the Slice length by unit, for energy charging.
func (c *Compiled) FloatOps() (n int) {
	for _, op := range c.Ops {
		if op.Op.IsFloat() {
			n++
		}
	}
	return n
}

// IntOps returns the number of integer ALU instructions in the Slice.
func (c *Compiled) IntOps() int { return len(c.Ops) - c.FloatOps() }

// StorageWords returns the number of 64-bit words of on-chip storage the
// AddrMap/input buffer spends on this Slice instance (inputs + one word per
// two ops for the embedded code reference, rounded up).
func (c *Compiled) StorageWords() int {
	return len(c.Inputs) + (len(c.Ops)+1)/2
}

// Eval recomputes the value on scratch (the scratchpad of paper §II-B;
// grown as needed). A Slice with zero ops returns its single input (a pure
// buffered value) or 0 if it has no inputs (the zero recipe).
//
//acr:spec-safe
func (c *Compiled) Eval(scratch []int64) int64 {
	need := len(c.Inputs) + len(c.Ops)
	if need == 0 {
		return 0
	}
	if cap(scratch) < need {
		scratch = make([]int64, need)
	}
	scratch = scratch[:need]
	copy(scratch, c.Inputs)
	get := func(i int32) int64 {
		if i < 0 {
			return 0
		}
		return scratch[i]
	}
	base := len(c.Inputs)
	for j, op := range c.Ops {
		scratch[base+j] = isa.EvalALU(op.Op, get(op.A), get(op.B), get(op.C), op.Imm) //acr:spec-ok get is the local closure above, reading caller-private scratch
	}
	return scratch[need-1]
}

// String renders the Slice as pseudo-assembly over slots s0, s1, ...
func (c *Compiled) String() string {
	var b strings.Builder
	for i, v := range c.Inputs {
		fmt.Fprintf(&b, "s%d = input(%d)\n", i, v)
	}
	operand := func(i int32) string {
		if i < 0 {
			return "-"
		}
		return fmt.Sprintf("s%d", i)
	}
	base := len(c.Inputs)
	for j, op := range c.Ops {
		switch {
		case op.Op.HasImm() && op.A >= 0:
			fmt.Fprintf(&b, "s%d = %s %s, %d\n", base+j, op.Op, operand(op.A), op.Imm)
		case op.Op.HasImm():
			fmt.Fprintf(&b, "s%d = %s %d\n", base+j, op.Op, op.Imm)
		case op.C >= 0:
			fmt.Fprintf(&b, "s%d = %s %s, %s, %s\n", base+j, op.Op, operand(op.A), operand(op.B), operand(op.C))
		case op.B >= 0:
			fmt.Fprintf(&b, "s%d = %s %s, %s\n", base+j, op.Op, operand(op.A), operand(op.B))
		default:
			fmt.Fprintf(&b, "s%d = %s %s\n", base+j, op.Op, operand(op.A))
		}
	}
	return b.String()
}

// unusedEnc marks an unused operand during compilation.
const unusedEnc = int32(math.MinInt32)

// scratchSlots sizes the compile visited-table. A compilable recipe has
// size < SatSize, so its DAG holds at most 254 op nodes and 3×254 leaves
// (~1016 refs); 8192 slots keeps the open-addressed probe load under 1/8.
const scratchSlots = 1 << 13

// compileScratch is the reusable visited-table of the Compile walk: an
// epoch-stamped open-addressed map from arena Ref to evaluation slot,
// replacing a per-call map[Ref]int32. Bumping the epoch invalidates all
// entries in O(1), so back-to-back Compiles (one per ASSOC-ADDR) never
// clear or allocate.
type compileScratch struct {
	refs  [scratchSlots]Ref
	slots [scratchSlots]int32
	epoch [scratchSlots]uint32
	cur   uint32
}

// begin invalidates all entries for a new compilation.
//
//acr:noalloc
func (s *compileScratch) begin() {
	s.cur++
	if s.cur == 0 { // epoch wrapped: hard-clear stale stamps once per 2^32
		s.epoch = [scratchSlots]uint32{}
		s.cur = 1
	}
}

//acr:noalloc
func scratchHome(r Ref) uint32 {
	return uint32((uint64(uint32(r)) * 0x9E3779B97F4A7C15) >> (64 - 13))
}

//acr:noalloc
func (s *compileScratch) get(r Ref) (int32, bool) {
	for i, n := scratchHome(r), 0; ; i, n = (i+1)&(scratchSlots-1), n+1 {
		if s.epoch[i] != s.cur {
			return 0, false
		}
		if s.refs[i] == r {
			return s.slots[i], true
		}
		if n >= scratchSlots {
			panic("slice: compile scratch overflow (recipe DAG exceeds size bound)")
		}
	}
}

//acr:noalloc
func (s *compileScratch) set(r Ref, v int32) {
	for i, n := scratchHome(r), 0; ; i, n = (i+1)&(scratchSlots-1), n+1 {
		if s.epoch[i] != s.cur || s.refs[i] == r {
			s.refs[i], s.slots[i], s.epoch[i] = r, v, s.cur
			return
		}
		if n >= scratchSlots {
			panic("slice: compile scratch overflow (recipe DAG exceeds size bound)")
		}
	}
}

// Compile serialises the recipe r into a standalone Slice, deduplicating
// shared sub-expressions, or reports false if the recipe is opaque or needs
// more than maxOps instructions. The walk aborts as soon as the op budget
// is exceeded, so Compile stays cheap even when invoked on every
// ASSOC-ADDR. Every emitted Slice is gated through Validate — the runtime
// counterpart of the static recomputability proof — so dynamic extraction
// can never hand recovery a Slice violating the soundness contract.
func (t *Tracker) Compile(core int, r Ref, maxOps int) (*Compiled, bool) {
	c, err := t.CompileVerified(core, r, maxOps)
	return c, err == nil
}

// errSliceBudget is the non-diagnostic rejection: the recipe is opaque or
// exceeds the op budget (the common case, paper §III-A's length threshold).
var errSliceBudget = fmt.Errorf("slice: recipe is opaque or exceeds the op budget")

// CompileVerified is Compile with the rejection reason: the budget sentinel
// for opaque/over-long recipes, or a Validate diagnostic when the emitted
// Slice violates the soundness contract (which would indicate recipe
// tracker corruption — recovery must reject it rather than replay it).
func (t *Tracker) CompileVerified(core int, r Ref, maxOps int) (*Compiled, error) {
	return t.CompileInto(core, nil, r, maxOps)
}

// CompileInto is CompileVerified compiling into a recycled Compiled shell:
// into's Inputs/Ops backing arrays are truncated and reused, so the
// steady-state association path (recycled shells supplied by the AddrMap
// pool) performs no heap allocation. into == nil allocates a fresh shell.
// Unlike the tracking methods, compiles share the Tracker-wide visited
// table and must not run concurrently — see the Tracker doc.
//
//acr:noalloc
func (t *Tracker) CompileInto(core int, into *Compiled, r Ref, maxOps int) (*Compiled, error) {
	s := &t.shards[core]
	if s.at(r).kind == kindOpaque {
		return nil, errSliceBudget
	}
	c := into
	if c == nil {
		c = &Compiled{} //acr:alloc-ok cold path: only when the caller supplies no recycled shell
	} else {
		c.Inputs = c.Inputs[:0]
		c.Ops = c.Ops[:0]
	}
	t.cTab.begin()
	if !s.emit(&t.cTab, r, c, maxOps) {
		return nil, errSliceBudget
	}
	// Fix up operand encodings: inputs keep their index; op results are
	// encoded as ^opIndex and shift by the final input count.
	n := int32(len(c.Inputs))
	fix := func(v int32) int32 { //acr:alloc-ok non-escaping closure, stack-allocated and inlined
		switch {
		case v == unusedEnc:
			return -1
		case v < 0:
			return n + ^v
		default:
			return v
		}
	}
	for j := range c.Ops {
		c.Ops[j].A = fix(c.Ops[j].A)
		c.Ops[j].B = fix(c.Ops[j].B)
		c.Ops[j].C = fix(c.Ops[j].C)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// emit appends r's subgraph to c in topological order. During the walk,
// tab holds: input index (≥ 0) for leaves, ^opIndex (< 0) for ops.
//
//acr:noalloc
func (s *shard) emit(tab *compileScratch, r Ref, c *Compiled, maxOps int) bool {
	if _, done := tab.get(r); done {
		return true
	}
	n := s.at(r)
	switch n.kind {
	case kindOpaque:
		return false
	case kindZero, kindInput:
		val := int64(0)
		if n.kind == kindInput {
			val = n.val
		}
		c.Inputs = append(c.Inputs, val) //acr:alloc-ok recycled shell's backing array, amortized across compiles
		tab.set(r, int32(len(c.Inputs)-1))
		return true
	}
	for _, ch := range [3]Ref{n.a, n.b, n.c} {
		if ch == noRef {
			continue
		}
		if !s.emit(tab, ch, c, maxOps) {
			return false
		}
	}
	if len(c.Ops) >= maxOps {
		return false
	}
	op := COp{Op: n.op, A: unusedEnc, B: unusedEnc, C: unusedEnc, Imm: n.imm}
	if n.a != noRef {
		op.A, _ = tab.get(n.a)
	}
	if n.b != noRef {
		op.B, _ = tab.get(n.b)
	}
	if n.c != noRef {
		op.C, _ = tab.get(n.c)
	}
	c.Ops = append(c.Ops, op) //acr:alloc-ok recycled shell's backing array, amortized across compiles
	tab.set(r, ^int32(len(c.Ops)-1))
	return true
}
