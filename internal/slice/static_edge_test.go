package slice

import (
	"strings"
	"testing"

	"acr/internal/isa"
)

// TestStaticAddressRegWrittenInWindow pins the slicing rule that the store's
// address register is NOT part of the slice: ACR buffers the effective
// address in the AddrMap at ASSOC-ADDR time, so the address computation need
// not be replayed. A window that recomputes the address register must not
// pull that arithmetic into the slice.
func TestStaticAddressRegWrittenInWindow(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.LI, Rd: 4, Imm: 100},        // address reg written in window
		{Op: isa.ADDI, Rd: 4, Rs: 4, Imm: 8}, // ... and again
		{Op: isa.LI, Rd: 3, Imm: 7},          // the stored value
		{Op: isa.ST, Rt: 3, Rs: 4, Imm: 0},
	}
	s, err := Backward(code, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Members) != 1 || s.Members[0] != 2 {
		t.Fatalf("members = %v, want only the value producer at pc 2 (address arithmetic is buffered, not sliced)", s.Members)
	}
	if len(s.InputLoads) != 0 || len(s.LiveIn) != 0 {
		t.Fatalf("slice has spurious inputs: %+v", s)
	}
}

// TestStaticR0SourcesNotNeeded pins that r0 operands never become slice
// inputs: r0 is architectural zero, not program state.
func TestStaticR0SourcesNotNeeded(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.ADD, Rd: 3, Rs: 0, Rt: 0}, // r3 = 0 + 0
		{Op: isa.ST, Rt: 3, Rs: 0, Imm: 5},
	}
	s, err := Backward(code, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Members) != 1 || s.Members[0] != 0 {
		t.Fatalf("members = %v, want [0]", s.Members)
	}
	if len(s.LiveIn) != 0 {
		t.Fatalf("r0 must not appear as a live-in, got %v", s.LiveIn)
	}
}

// TestStaticEmptySliceStoreOfR0 pins the degenerate slice: a store of r0 has
// no members, no inputs and no live-ins — the recovery evaluation is the
// constant zero.
func TestStaticEmptySliceStoreOfR0(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 9},
		{Op: isa.ST, Rt: 0, Rs: 1, Imm: 0},
	}
	s, err := Backward(code, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.NumInputs() != 0 || len(s.LiveIn) != 0 {
		t.Fatalf("store of r0 must yield the empty slice, got %+v", s)
	}
}

// TestStaticStoreIndexOutOfRange pins the error paths for bad store indices.
func TestStaticStoreIndexOutOfRange(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.ST, Rt: 1, Rs: 2, Imm: 0},
	}
	for _, idx := range []int{-1, 1, 99} {
		if _, err := Backward(code, idx); err == nil {
			t.Errorf("store index %d must be rejected", idx)
		}
	}
	if _, err := Backward(nil, 0); err == nil {
		t.Error("empty window must be rejected")
	}
}

// TestValidateAcceptsCompiledSlices checks the runtime verifier on slices the
// tracker actually emits.
func TestValidateAcceptsCompiledSlices(t *testing.T) {
	s := newRegSim()
	s.load(1, 6)
	s.load(2, 5)
	s.exec(isa.Instr{Op: isa.MUL, Rd: 3, Rs: 1, Rt: 1})
	s.exec(isa.Instr{Op: isa.SHLI, Rd: 4, Rs: 2, Imm: 1})
	s.exec(isa.Instr{Op: isa.ADD, Rd: 5, Rs: 3, Rt: 4})
	c, err := s.t.CompileVerified(0, s.t.Recipe(0, 5), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestValidateRejectsImpureOp checks that a Slice containing a non-ALU op is
// rejected with a diagnostic naming the op.
func TestValidateRejectsImpureOp(t *testing.T) {
	c := &Compiled{
		Inputs: []int64{1},
		Ops: []COp{
			{Op: isa.LD, A: 0, B: -1, C: -1},
		},
	}
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "not a pure ALU/FPU") {
		t.Fatalf("impure op must be rejected, got %v", err)
	}
}

// TestValidateRejectsForwardReference checks the topological-order
// obligation: an op may only read inputs and earlier results.
func TestValidateRejectsForwardReference(t *testing.T) {
	c := &Compiled{
		Inputs: []int64{1},
		Ops: []COp{
			{Op: isa.ADDI, A: 2, B: -1, C: -1, Imm: 1}, // slot 2 is its own future
		},
	}
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "topologically") {
		t.Fatalf("forward reference must be rejected, got %v", err)
	}
	c.Ops[0].A = -7
	if err := c.Validate(); err == nil {
		t.Fatal("operand slot below -1 must be rejected")
	}
}

// TestCompileVerifiedBudgetSentinel checks that opaque/over-budget recipes
// are reported with the budget error, distinct from a soundness violation.
func TestCompileVerifiedBudgetSentinel(t *testing.T) {
	s := newRegSim()
	s.load(1, 3)
	for i := 0; i < 6; i++ {
		s.exec(isa.Instr{Op: isa.ADDI, Rd: 1, Rs: 1, Imm: 1})
	}
	if _, err := s.t.CompileVerified(0, s.t.Recipe(0, 1), 3); err == nil {
		t.Fatal("over-budget recipe must fail to compile")
	}
	if c, err := s.t.CompileVerified(0, s.t.Recipe(0, 1), 10); err != nil || c.Len() != 6 {
		t.Fatalf("in-budget recipe must verify, got %v (len %d)", err, c.Len())
	}
}
