// Faulttolerance: run the is benchmark under increasingly hostile error
// rates (paper §V-D2) and verify that every recovery reproduces the
// error-free memory image exactly, while measuring how ACR's recomputation
// keeps the recovery overhead below the baseline's.
package main

import (
	"fmt"
	"log"

	acr "acr/internal/core"
	"acr/internal/fault"
	"acr/internal/sim"
	"acr/internal/workloads"
)

func main() {
	const threads = 4
	bench, err := workloads.ByName("is")
	must(err)
	class := workloads.ClassS

	// Error-free reference.
	refProg, err := bench.Build(threads, class)
	must(err)
	ref, err := sim.New(sim.DefaultConfig(threads), refProg)
	must(err)
	refRes, err := ref.Run()
	must(err)
	period := refRes.Cycles / 11

	fmt.Printf("is, %d threads, class %s: error-free %d cycles\n\n", threads, class.Name, refRes.Cycles)
	fmt.Println("errors  Ckpt_E cycles  ReCkpt_E cycles  recomputed  verified")
	for errs := 1; errs <= 5; errs++ {
		ckpt := runOnce(bench, class, threads, period, refRes.Cycles, errs, false)
		re := runOnce(bench, class, threads, period, refRes.Cycles, errs, true)
		verify(ref, re.mem, re.words)
		verify(ref, ckpt.mem, ckpt.words)
		fmt.Printf("%6d  %13d  %15d  %10d  %8s\n",
			errs, ckpt.cycles, re.cycles, re.recomputed, "yes")
	}
	fmt.Println("\nevery run recovered to the exact error-free memory image;")
	fmt.Println("ReCkpt pays recomputation during recovery but wins it back on checkpointing.")
}

type outcome struct {
	cycles     int64
	recomputed int64
	mem        *sim.Machine
	words      int
}

func runOnce(bench workloads.Bench, class workloads.Class, threads int, period, horizon int64, errs int, amnesic bool) outcome {
	p, err := bench.Build(threads, class)
	must(err)
	cfg := sim.DefaultConfig(threads)
	cfg.Checkpointing = true
	cfg.PeriodCycles = period
	cfg.Amnesic = amnesic
	if amnesic {
		cfg.ACR = acr.Config{Threshold: bench.Threshold, MapCapacity: 4096 * threads}
	}
	cfg.Errors = fault.Uniform(errs, horizon, period/2)
	m, err := sim.New(cfg, p)
	must(err)
	res, err := m.Run()
	must(err)
	if res.Ckpt.Recoveries != int64(errs) {
		log.Fatalf("expected %d recoveries, got %d", errs, res.Ckpt.Recoveries)
	}
	return outcome{cycles: res.Cycles, recomputed: res.Ckpt.RecomputedWords, mem: m, words: p.DataWords}
}

func verify(ref *sim.Machine, got *sim.Machine, words int) {
	for a := int64(0); a < int64(words); a++ {
		if got.Mem().ReadWord(a) != ref.Mem().ReadWord(a) {
			log.Fatalf("memory differs at %d — recovery corrupted state", a)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
