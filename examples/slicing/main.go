// Slicing: the paper's Fig. 3 walk-through, from both ends. The static
// backward slicer derives the classic Weiser slice of a store over an
// unrolled window; the dynamic tracker derives the equivalent runtime
// Slice, shows the threshold gate, and recomputes the value — exactly what
// the ACR recovery handler does.
package main

import (
	"fmt"

	"acr/internal/isa"
	"acr/internal/slice"
)

func main() {
	// Fig. 3(a): sumArr = i*i + (j << 1), with i and j loaded from
	// memory; unrelated work interleaved.
	window := []isa.Instr{
		{Op: isa.LD, Rd: 1, Rs: 10, Imm: 0},  // load i
		{Op: isa.LD, Rd: 2, Rs: 10, Imm: 1},  // load j
		{Op: isa.MUL, Rd: 3, Rs: 1, Rt: 1},   // i*i
		{Op: isa.SHLI, Rd: 4, Rs: 2, Imm: 1}, // j<<1
		{Op: isa.LD, Rd: 7, Rs: 10, Imm: 2},  // unrelated
		{Op: isa.ADD, Rd: 5, Rs: 3, Rt: 4},   // sumArr
		{Op: isa.ADDI, Rd: 8, Rs: 7, Imm: 1}, // unrelated
		{Op: isa.ST, Rs: 11, Rt: 5, Imm: 0},  // store sumArr
	}
	s, err := slice.Backward(window, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println("static backward slice of the sumArr store (Fig. 3b/c):")
	fmt.Print(s.Render(window))
	fmt.Printf("ACR Slice: %d instructions, %d buffered inputs (loads are cut, Fig. 3d)\n\n",
		s.Len(), s.NumInputs())

	// The runtime view: execute the window with the tracker attached.
	tr := slice.NewTracker(1)
	regs := make([]int64, isa.NumRegs)
	mem := map[int64]int64{0: 6, 1: 5, 2: 99}
	for _, in := range window {
		switch {
		case in.Op == isa.LD:
			regs[in.Rd] = mem[in.Imm]
			tr.OnLoad(0, in.Rd, regs[in.Rd])
		case in.Op.IsALU():
			regs[in.Rd] = isa.EvalALU(in.Op, regs[in.Rs], regs[in.Rt], regs[in.Rd], in.Imm)
			tr.OnALU(0, in)
		}
	}

	fmt.Println("the compiler's threshold gate (paper §III-A):")
	for _, threshold := range []int{2, 3, 10} {
		c, ok := tr.Compile(0, tr.Recipe(0, 5), threshold)
		if !ok {
			fmt.Printf("  threshold %2d: Slice too long — value stays in the checkpoint\n", threshold)
			continue
		}
		fmt.Printf("  threshold %2d: embedded (%d instrs); recovery recomputes %d\n",
			threshold, c.Len(), c.Eval(nil))
	}

	c, _ := tr.Compile(0, tr.Recipe(0, 5), 10)
	fmt.Printf("\nthe embedded Slice, as evaluated on the scratchpad during recovery:\n%s", c)
	fmt.Printf("recomputed: %d (architectural value %d)\n", c.Eval(nil), regs[5])
}
