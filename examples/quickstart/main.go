// Quickstart: build a small program with the assembler API, run it on the
// simulated machine under ACR (amnesic checkpointing), inject an error, and
// watch recovery recompute the omitted values.
package main

import (
	"fmt"
	"log"

	"acr/internal/analysis"
	acr "acr/internal/core"
	"acr/internal/fault"
	"acr/internal/isa"
	"acr/internal/prog"
	"acr/internal/sim"
)

func main() {
	// A toy kernel: repeatedly recompute out[i] = in[i]*3 + 1 over many
	// sweeps. The stored values derive from a load plus two arithmetic
	// instructions, so each has a 2-instruction Slice — a perfect
	// candidate for amnesic omission.
	const n = 64
	b := prog.New("quickstart")
	in := b.Data(n)
	out := b.Data(n)
	b.Li(10, in)
	b.Li(11, out)
	b.LoopConst(20, 21, 200, func() { // 200 sweeps
		b.LoopConst(1, 2, n, func() {
			b.Op3(isa.ADD, 4, 10, 1) // &in[i]
			b.Ld(3, 4, 0)
			b.OpI(isa.MULI, 3, 3, 3)
			b.OpI(isa.ADDI, 3, 3, 1)
			b.Op3(isa.ADD, 4, 11, 1) // &out[i]
			b.StAssoc(3, 4, 0)       // store + ASSOC-ADDR
			// Feed back so values evolve across sweeps.
			b.Op3(isa.ADD, 4, 10, 1)
			b.St(3, 4, 0)
		})
	})
	b.Halt()
	program, err := b.Build()
	must(err)

	// Gate the kernel through the static analyser before running it: the
	// same checks `acrlint` applies to the shipped workloads.
	diags, err := analysis.Lint(program)
	must(err)
	for _, d := range diags {
		log.Fatalf("quickstart kernel fails lint: %s", d)
	}

	program.Init = func(mem []int64) {
		for i := 0; i < n; i++ {
			mem[i] = int64(i)
		}
	}

	// Error-free reference run.
	ref, err := sim.New(sim.DefaultConfig(1), program)
	must(err)
	refRes, err := ref.Run()
	must(err)
	fmt.Printf("reference run: %d instructions, %d cycles\n", refRes.Instrs, refRes.Cycles)

	// ACR run: checkpoint every ~1/10 of the run, one injected error.
	cfg := sim.DefaultConfig(1)
	cfg.Checkpointing = true
	cfg.Amnesic = true
	cfg.ACR = acr.Config{Threshold: 10, MapCapacity: 4096}
	cfg.PeriodCycles = refRes.Cycles / 10
	cfg.Errors = fault.Uniform(1, refRes.Cycles, cfg.PeriodCycles/2)

	m, err := sim.New(cfg, program)
	must(err)
	res, err := m.Run()
	must(err)

	fmt.Printf("ACR run:       %d cycles (%.1f%% overhead incl. one recovery)\n",
		res.Cycles, 100*float64(res.Cycles-refRes.Cycles)/float64(refRes.Cycles))
	fmt.Printf("checkpoints %d, recoveries %d\n", res.Ckpt.Checkpoints, res.Ckpt.Recoveries)
	total := res.Ckpt.LoggedWords + res.Ckpt.OmittedWords
	fmt.Printf("checkpointable volume: %d words, %d omitted (%.1f%%)\n",
		total, res.Ckpt.OmittedWords, 100*float64(res.Ckpt.OmittedWords)/float64(total))
	fmt.Printf("recovery recomputed %d values along their Slices\n", res.Ckpt.RecomputedWords)

	// Verify: recovery produced exactly the error-free memory image.
	for a := int64(0); a < int64(program.DataWords); a++ {
		if m.Mem().ReadWord(a) != ref.Mem().ReadWord(a) {
			log.Fatalf("memory differs at %d — recovery is broken", a)
		}
	}
	fmt.Println("verified: post-recovery memory is bit-identical to the error-free run")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
