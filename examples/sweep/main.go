// Sweep: the Slice-length threshold study of the paper's §V-D1 (Table II),
// on one benchmark. Longer thresholds let the compiler embed more Slices,
// so more values can be omitted from checkpoints — at the cost of more
// recomputation work during recovery, which this example also measures.
package main

import (
	"fmt"
	"log"
	"os"

	"acr/internal/bench"
	"acr/internal/workloads"
)

func main() {
	name := "bt"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if _, err := workloads.ByName(name); err != nil {
		log.Fatal(err)
	}
	p := bench.Params{Threads: 4, Class: workloads.ClassS}
	r := bench.NewRunner()

	fmt.Printf("%s: checkpoint size reduction and recovery recomputation vs Slice threshold\n\n", name)
	fmt.Println("threshold  size reduction%  time ovh%  recomputed values (1 error)")
	base, err := r.Baseline(name, p)
	if err != nil {
		log.Fatal(err)
	}
	for _, th := range []int{5, 10, 20, 30, 40, 50} {
		ne := bench.ReCkptNE
		ne.Threshold = th
		resNE, err := r.Run(name, p, ne)
		if err != nil {
			log.Fatal(err)
		}
		var logged, omitted int64
		for _, iv := range resNE.Intervals {
			logged += iv.Logged
			omitted += iv.Omitted
		}
		reduction := 100 * float64(omitted) / float64(logged+omitted)
		ovh := 100 * float64(resNE.Cycles-base.Cycles) / float64(base.Cycles)

		e := bench.ReCkptE
		e.Threshold = th
		resE, err := r.Run(name, p, e)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9d  %15.2f  %9.2f  %d\n", th, reduction, ovh, resE.Ckpt.RecomputedWords)
	}
	fmt.Println("\nthe paper's Table II shape: reduction grows with the threshold;")
	fmt.Println("the recovery-side recomputation volume grows with it (§V-D1).")
}
