// Command acrlint runs the whole-program static analysis suite over ISA
// kernels: basic-block/CFG construction, reaching definitions, liveness and
// constant propagation feed lint passes for uninitialised reads, dead
// stores, unreachable code, r0 writes, out-of-segment memory references,
// fall-through termination and barrier-less infinite loops.
//
// With -auto, the auto checkpoint strategy's static site plan is surfaced
// alongside the lint findings as info-level diagnostics: pruned and boosted
// ASSOC-ADDR sites, and barriers that dominate no store. Info diagnostics
// are advisory and never affect the exit status.
//
// Targets are benchmark names from the workloads registry; "all" (or the
// conventional "./...") lints every registered kernel. The exit status is 1
// if any warning or error is produced, so acrlint works as a CI gate:
//
//	acrlint ./...
//	acrlint -auto -json -class W -threads 8 cg is
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"acr/internal/analysis"
	"acr/internal/workloads"
)

// report is the JSON shape emitted for one linted program.
type report struct {
	Target  string          `json:"target"`
	Threads int             `json:"threads"`
	Class   string          `json:"class"`
	Instrs  int             `json:"instrs"`
	Diags   []analysis.Diag `json:"diags"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	className := flag.String("class", "S", "problem class to build kernels at (S, W or A)")
	threads := flag.Int("threads", 4, "thread count to build kernels for")
	auto := flag.Bool("auto", false, "surface the auto checkpoint strategy's site plan as info diagnostics")
	threshold := flag.Int("threshold", 0, "dynamic slice-length threshold for -auto (0 = paper default)")
	flag.Parse()

	class, err := workloads.ClassByName(*className)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrlint:", err)
		os.Exit(2)
	}

	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "acrlint: no targets; pass benchmark names or ./... for all")
		os.Exit(2)
	}
	var benches []workloads.Bench
	for _, t := range targets {
		if t == "all" || t == "./..." {
			benches = workloads.All()
			break
		}
		b, err := workloads.ByName(t)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acrlint:", err)
			os.Exit(2)
		}
		benches = append(benches, b)
	}

	var reports []report
	total := 0
	for _, b := range benches {
		p, err := b.Build(*threads, class)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acrlint: %s: %v\n", b.Name, err)
			os.Exit(2)
		}
		diags, err := analysis.Lint(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acrlint: %s: %v\n", b.Name, err)
			os.Exit(2)
		}
		if *auto {
			planDiags, err := analysis.AutoPlanDiags(p.Code, p.Entry, *threshold)
			if err != nil {
				fmt.Fprintf(os.Stderr, "acrlint: %s: %v\n", b.Name, err)
				os.Exit(2)
			}
			diags = append(diags, planDiags...)
		}
		for _, d := range diags {
			if d.Severity != analysis.SevInfo {
				total++
			}
		}
		reports = append(reports, report{
			Target:  b.Name,
			Threads: *threads,
			Class:   class.Name,
			Instrs:  len(p.Code),
			Diags:   diags,
		})
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, "acrlint:", err)
			os.Exit(2)
		}
	} else {
		for _, r := range reports {
			if len(r.Diags) == 0 {
				fmt.Printf("%s: ok (%d instrs)\n", r.Target, r.Instrs)
				continue
			}
			fmt.Printf("%s: %d diagnostics\n", r.Target, len(r.Diags))
			for _, d := range r.Diags {
				fmt.Printf("  %s\n", d)
			}
		}
	}
	if total > 0 {
		os.Exit(1)
	}
}
