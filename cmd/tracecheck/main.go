// Command tracecheck validates telemetry artifacts produced by acrsim and
// acrbench: Chrome trace-event JSON, Prometheus text expositions and JSON
// run profiles. CI's smoke step runs it against fresh artifacts; exit
// status 1 means a malformed file.
//
// Usage:
//
//	tracecheck [-trace out.json] [-metrics out.prom] [-profile profile.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"acr/internal/telemetry"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	metricsPath := flag.String("metrics", "", "Prometheus exposition file to validate")
	profilePath := flag.String("profile", "", "JSON run profile to validate")
	flag.Parse()

	if *tracePath == "" && *metricsPath == "" && *profilePath == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: nothing to check (want -trace, -metrics and/or -profile)")
		os.Exit(2)
	}

	if *tracePath != "" {
		n := check(*tracePath, func(f *os.File) (int, error) {
			return telemetry.ValidateTrace(f)
		})
		fmt.Printf("trace    %s: %d events ok\n", *tracePath, n)
	}
	if *metricsPath != "" {
		var st telemetry.ExpositionStats
		check(*metricsPath, func(f *os.File) (int, error) {
			var err error
			st, err = telemetry.ParseExposition(f)
			return st.Samples, err
		})
		fmt.Printf("metrics  %s: %d families, %d samples ok\n", *metricsPath, st.Families, st.Samples)
	}
	if *profilePath != "" {
		n := check(*profilePath, func(f *os.File) (int, error) {
			p, err := telemetry.ReadProfile(f)
			if err != nil {
				return 0, err
			}
			return len(p.Families), nil
		})
		fmt.Printf("profile  %s: %d families ok\n", *profilePath, n)
	}
}

func check(path string, validate func(*os.File) (int, error)) int {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := validate(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
