// Command tracecheck validates telemetry artifacts produced by acrsim and
// acrbench: Chrome trace-event JSON, Prometheus text expositions and JSON
// run profiles. CI's smoke step runs it against fresh artifacts.
//
// Usage:
//
//	tracecheck [-json] [-trace out.json] [-metrics out.prom] [-profile profile.json]
//
// Every requested artifact is checked even after a failure, so one run
// reports them all; -json emits the per-artifact results as a JSON array.
// Exit status is 1 when any check failed, 2 when nothing was requested.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"acr/internal/telemetry"
)

// result is one artifact's validation outcome.
type result struct {
	Kind string `json:"kind"`
	Path string `json:"path"`
	OK   bool   `json:"ok"`
	// Count is the validated unit count: trace events, exposition samples
	// or profile families.
	Count    int    `json:"count"`
	Families int    `json:"families,omitempty"`
	Error    string `json:"error,omitempty"`
}

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	metricsPath := flag.String("metrics", "", "Prometheus exposition file to validate")
	profilePath := flag.String("profile", "", "JSON run profile to validate")
	asJSON := flag.Bool("json", false, "emit per-artifact results as JSON")
	flag.Parse()

	if *tracePath == "" && *metricsPath == "" && *profilePath == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: nothing to check (want -trace, -metrics and/or -profile)")
		os.Exit(2)
	}

	var results []result
	if *tracePath != "" {
		results = append(results, check("trace", *tracePath, func(f *os.File) (int, int, error) {
			n, err := telemetry.ValidateTrace(f)
			return n, 0, err
		}))
	}
	if *metricsPath != "" {
		results = append(results, check("metrics", *metricsPath, func(f *os.File) (int, int, error) {
			st, err := telemetry.ParseExposition(f)
			return st.Samples, st.Families, err
		}))
	}
	if *profilePath != "" {
		results = append(results, check("profile", *profilePath, func(f *os.File) (int, int, error) {
			p, err := telemetry.ReadProfile(f)
			if err != nil {
				return 0, 0, err
			}
			return len(p.Families), len(p.Families), nil
		}))
	}

	failed := false
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		for _, r := range results {
			failed = failed || !r.OK
		}
	} else {
		for _, r := range results {
			if !r.OK {
				failed = true
				fmt.Printf("%-8s %s: FAILED: %s\n", r.Kind, r.Path, r.Error)
				continue
			}
			switch r.Kind {
			case "trace":
				fmt.Printf("trace    %s: %d events ok\n", r.Path, r.Count)
			case "metrics":
				fmt.Printf("metrics  %s: %d families, %d samples ok\n", r.Path, r.Families, r.Count)
			case "profile":
				fmt.Printf("profile  %s: %d families ok\n", r.Path, r.Count)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func check(kind, path string, validate func(*os.File) (int, int, error)) result {
	r := result{Kind: kind, Path: path}
	f, err := os.Open(path)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	defer f.Close()
	n, fams, err := validate(f)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	r.OK, r.Count, r.Families = true, n, fams
	return r
}
