// Command acrreport joins two benchmark or telemetry artifacts and emits a
// per-metric delta table with regression gating: exit status 1 when any
// metric crossed the threshold in its worse direction. It turns BENCH_N
// trajectory checks — and metrics/profile drift checks — into a CI tool
// instead of eyeballing.
//
// Usage:
//
//	acrreport [-threshold 0.05] [-metrics allocs_per_op,instrs]
//	          [-json] [-require-match] OLD NEW
//
// OLD and NEW are either two BENCH_*.json documents (rows join on name,
// fields compare under their improvement direction: ns_per_op up is a
// regression, sim_mips down is, instrs any drift), or two run-profile JSON
// files / directories of them (profiles join on canonicalised meta, any
// drift beyond the threshold regresses — the simulator is deterministic).
//
//	acrreport -metrics allocs_per_op,instrs -threshold 0.5 BENCH_6.json /tmp/bench.json
//	acrreport -threshold 0 profiles_before/ profiles_after/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"acr/internal/report"
)

func main() {
	threshold := flag.Float64("threshold", 0.05, "relative regression threshold (0.05 = 5%)")
	metrics := flag.String("metrics", "", "comma-separated metric (bench field / family) allowlist; empty = all")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of a table")
	requireMatch := flag.Bool("require-match", false, "count unmatched join keys as regressions")
	flag.Parse()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "acrreport: want exactly two artifacts: OLD NEW")
		flag.Usage()
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)

	opt := report.Options{Threshold: *threshold, RequireMatch: *requireMatch}
	for _, m := range strings.Split(*metrics, ",") {
		if m = strings.TrimSpace(m); m != "" {
			opt.Metrics = append(opt.Metrics, m)
		}
	}

	oldKind, err := detect(oldPath)
	if err != nil {
		fatal(err)
	}
	newKind, err := detect(newPath)
	if err != nil {
		fatal(err)
	}
	if oldKind != newKind {
		fatal(fmt.Errorf("artifact kinds differ: %s is %s, %s is %s", oldPath, oldKind, newPath, newKind))
	}

	var rep *report.Report
	switch oldKind {
	case "bench":
		oldDoc, err := report.LoadBench(oldPath)
		if err != nil {
			fatal(err)
		}
		newDoc, err := report.LoadBench(newPath)
		if err != nil {
			fatal(err)
		}
		rep = report.DiffBench(oldDoc, newDoc, opt)
	case "profiles":
		oldSet, err := report.LoadProfiles(oldPath)
		if err != nil {
			fatal(err)
		}
		newSet, err := report.LoadProfiles(newPath)
		if err != nil {
			fatal(err)
		}
		rep = report.DiffProfiles(oldSet, newSet, opt)
	}

	if *asJSON {
		err = rep.RenderJSON(os.Stdout)
	} else {
		err = rep.Render(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	if rep.Regressions > 0 {
		os.Exit(1)
	}
}

// detect classifies an artifact path: directories are profile sets, files
// are sniffed for the BENCH "results" array vs the profile "families"
// array.
func detect(path string) (string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if info.IsDir() {
		return "profiles", nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe struct {
		Results  []json.RawMessage `json:"results"`
		Families []json.RawMessage `json:"families"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case len(probe.Results) > 0:
		return "bench", nil
	case len(probe.Families) > 0:
		return "profiles", nil
	}
	return "", fmt.Errorf("%s: neither a BENCH_*.json document (results) nor a run profile (families)", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acrreport:", err)
	os.Exit(1)
}
