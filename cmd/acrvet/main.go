// Command acrvet is the repository's invariant multichecker: it loads the
// module from source (standard library only — no go/packages) and runs the
// internal/vet analyzer suite over it. CI runs it next to go vet as a hard
// gate; any diagnostic is exit status 1.
//
// Usage:
//
//	acrvet [flags] [packages]
//
//	acrvet ./...                     check the whole module
//	acrvet ./internal/sim            check one package
//	acrvet -run noalloc,memokey ./...  run a subset of analyzers
//	acrvet -json ./...               machine-readable diagnostics
//	acrvet -list                     print the suite and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"acr/internal/vet"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as JSON")
		list    = flag.Bool("list", false, "list analyzers and exit")
		run     = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		dir     = flag.String("C", ".", "directory to resolve the module from")
	)
	flag.Parse()

	if *list {
		for _, a := range vet.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := vet.Analyzers()
	if *run != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			a := vet.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "acrvet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := vet.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrvet:", err)
		os.Exit(2)
	}
	loader, err := vet.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrvet:", err)
		os.Exit(2)
	}
	prog, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acrvet:", err)
		os.Exit(2)
	}

	diags := vet.Run(prog, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "acrvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "acrvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
