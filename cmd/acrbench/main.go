// Command acrbench regenerates the paper's tables and figures.
//
// Usage:
//
//	acrbench [-exp all|quick|tableI|fig1|fig6|fig7|fig8|fig9|tableII|fig10|fig11|fig12|fig13|scal|strategies]
//	         [-threads N] [-class S|W|A] [-j N] [-workers N] [-compile off]
//	         [-strategy-benches is,cg,mg] [-strategy-cores 4,8]
//	         [-strategy-errors 1] [-strategy-json matrix.json]
//	         [-serve ADDR] [-journal runs.jsonl] [-linger DUR]
//
// -j sizes the driver's job pool (distinct machines in flight); -workers
// sets the intra-run worker count per machine (the deterministic parallel
// engine, bit-identical to serial execution). -compile off|on|auto selects
// the block-compilation execution engine for those machines — also
// bit-identical, so every table is unchanged; "on" is rejected with
// -workers > 1 (speculative rounds bypass block compilation) and "auto"
// compiles exactly the serial executions.
//
// -serve starts the HTTP observatory (internal/obsrv) on ADDR before the
// sweep: every job registers in the live run registry, /metrics exposes the
// aggregated telemetry, /runs/{key}/events streams each run's flight
// recorder, and /debug/pprof replaces the old ad-hoc pprof listener (the
// -pprof flag is a deprecated alias). -journal appends the run registry's
// JSONL journal to a file (loading any existing entries first); -linger
// keeps the observatory serving for the given duration after the sweep so
// scrapers and CI smoke checks can inspect a finished process.
//
// -exp quick is fig6 alone — a small, checkpoint-heavy slice for smoke
// tests; like the ablations it is not part of 'all'.
//
// -exp strategies crosses every checkpoint strategy (full, amnesic,
// differential, tiered, auto) with the -strategy-benches workloads and
// -strategy-cores core counts; -strategy-json exports the grid as a
// machine-readable document. It is not part of 'all' — the paper set — and
// must be requested explicitly.
//
// Each experiment prints the same rows/series the paper reports (absolute
// numbers differ — the substrate is a simulator, not the authors' testbed —
// but the shape is the reproduction target; see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"acr/internal/bench"
	"acr/internal/obsrv"
	"acr/internal/stats"
	"acr/internal/telemetry"
	"acr/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma separated), 'all' (paper set), or 'ablations'")
	threads := flag.Int("threads", 8, "thread/core count")
	class := flag.String("class", "W", "problem class (S, W, A)")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jobs := flag.Int("j", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = serial)")
	workers := flag.Int("workers", 1, "intra-run simulation workers per machine (>1 = parallel engine, bit-identical to serial; 0 = GOMAXPROCS)")
	compileFlag := flag.String("compile", "off", "block-compilation engine: off|on|auto (bit-identical to the interpreter; on requires -workers 1, auto compiles serial executions only)")
	verbose := flag.Bool("v", false, "print per-job wall-time and queue-wait reports")
	stratBenches := flag.String("strategy-benches", "is,cg,mg", "benchmarks for -exp strategies (comma separated)")
	stratCores := flag.String("strategy-cores", "4,8", "core counts for -exp strategies (comma separated)")
	stratErrors := flag.Int("strategy-errors", 1, "injected errors in the _E cells of -exp strategies")
	stratJSON := flag.String("strategy-json", "", "write the strategy matrix as JSON to this file")
	metricsDir := flag.String("metrics-dir", "", "write driver metrics (driver.prom, driver.json) into this directory")
	serveAddr := flag.String("serve", "", "serve the HTTP observatory (/metrics, /runs, /debug/pprof) on this address (e.g. localhost:6060, :0)")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -serve (pprof now lives under the observatory)")
	journalPath := flag.String("journal", "", "append the run registry's JSONL journal to this file (requires -serve)")
	linger := flag.Duration("linger", 0, "keep the observatory serving this long after the sweep finishes")
	flag.Parse()

	if *serveAddr == "" && *pprofAddr != "" {
		fmt.Fprintln(os.Stderr, "acrbench: -pprof is deprecated, serving the full observatory (use -serve)")
		*serveAddr = *pprofAddr
	}

	cl, err := workloads.ClassByName(*class)
	if err != nil {
		fatal(err)
	}
	p := bench.Params{Threads: *threads, Class: cl}
	r := bench.NewRunner()
	r.Workers = *jobs
	r.SimWorkers = *workers
	if r.SimWorkers == 0 {
		r.SimWorkers = runtime.GOMAXPROCS(0)
	}
	compileMode, err := bench.ParseCompileMode(*compileFlag)
	if err != nil {
		fatal(err)
	}
	if r.SimCompile, err = compileMode.Resolve(r.SimWorkers); err != nil {
		fatal(err)
	}

	var registry *obsrv.Registry
	if *serveAddr != "" {
		registry, err = obsrv.NewRegistry(obsrv.Options{JournalPath: *journalPath})
		if err != nil {
			fatal(err)
		}
		defer registry.Close()
		if *journalPath != "" {
			// Fold any previous process's journal in first, so /runs
			// shows the sweep's history across restarts.
			if err := registry.LoadJournal(*journalPath); err != nil {
				fatal(err)
			}
		}
		server := obsrv.NewServer(registry)
		addr, err := server.Start(*serveAddr)
		if err != nil {
			fatal(err) // fail fast: a bad -serve address kills the run before any simulation
		}
		defer server.Close()
		fmt.Fprintf(os.Stderr, "acrbench: observatory listening on http://%s\n", addr)
		r.Lifecycle = registry
		defer func() {
			if p := recover(); p != nil {
				fmt.Fprintln(os.Stderr, "acrbench: panic — dumping flight recorders:")
				registry.DumpFlight(func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, format, args...)
				})
				panic(p)
			}
		}()
	}
	start := time.Now()

	type gen func() (*stats.Table, error)
	experiments := []struct {
		name string
		run  gen
	}{
		{"quick", func() (*stats.Table, error) { return r.Fig6(p) }},
		{"tableI", func() (*stats.Table, error) { return bench.TableI(), nil }},
		{"fig1", func() (*stats.Table, error) { return bench.Fig1(10), nil }},
		{"fig6", func() (*stats.Table, error) { return r.Fig6(p) }},
		{"fig7", func() (*stats.Table, error) { return r.Fig7(p) }},
		{"fig8", func() (*stats.Table, error) { return r.Fig8(p) }},
		{"fig9", func() (*stats.Table, error) { return r.Fig9(p) }},
		{"tableII", func() (*stats.Table, error) { return r.TableII(p) }},
		{"fig10", func() (*stats.Table, error) { return r.Fig10(p, "bt") }},
		{"fig11", func() (*stats.Table, error) { return r.Fig11(p) }},
		{"fig12", func() (*stats.Table, error) { return r.Fig12(p) }},
		{"fig13", func() (*stats.Table, error) { return r.Fig13(p) }},
		{"scal", func() (*stats.Table, error) { return r.Scalability(p) }},
		{"strategies", func() (*stats.Table, error) {
			benches := splitList(*stratBenches)
			cores, err := parseInts(*stratCores)
			if err != nil {
				return nil, fmt.Errorf("-strategy-cores: %w", err)
			}
			tab, err := r.StrategyMatrix(benches, cores, cl, *stratErrors)
			if err != nil {
				return nil, err
			}
			if *stratJSON != "" {
				// All cells are memoised by the table run above, so the
				// doc assembly is pure cache reads.
				doc, err := r.StrategyMatrixDoc(benches, cores, cl, *stratErrors)
				if err != nil {
					return nil, err
				}
				if err := writeJSON(*stratJSON, doc); err != nil {
					return nil, err
				}
			}
			return tab, nil
		}},
		{"abl-policy", func() (*stats.Table, error) { return r.AblationPolicy(p) }},
		{"abl-addrmap", func() (*stats.Table, error) { return r.AblationAddrMap(p) }},
		{"abl-detect", func() (*stats.Table, error) { return r.AblationDetect(p) }},
		{"abl-adaptive", func() (*stats.Table, error) { return r.AblationAdaptive(p) }},
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(name)] = true
	}
	matched := 0
	for _, e := range experiments {
		isAblation := strings.HasPrefix(e.name, "abl-")
		// The strategy matrix is its own grid (it ignores -threads), so
		// 'all' — the paper set — does not imply it; 'quick' is a smoke
		// slice, also opt-in only.
		isExtra := isAblation || e.name == "strategies" || e.name == "quick"
		switch {
		case want[e.name]:
		case want["all"] && !isExtra:
		case want["ablations"] && isAblation:
		default:
			continue
		}
		matched++
		t, err := e.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.name, err))
		}
		if *asCSV {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}
	if matched == 0 {
		fatal(fmt.Errorf("no experiment matches %q", *exp))
	}
	elapsed := time.Since(start)

	if *verbose {
		reportJobs(r.Reports(), elapsed)
	}
	if *metricsDir != "" {
		if err := writeDriverMetrics(*metricsDir, r.Reports(), elapsed, *exp, p); err != nil {
			fatal(err)
		}
	}
	if registry != nil && *linger > 0 {
		fmt.Fprintf(os.Stderr, "acrbench: sweep done, observatory lingering for %v\n", *linger)
		time.Sleep(*linger)
	}
}

// reportJobs prints the driver's per-job execution profile: when each job
// was dispatched, how long its simulation took, and which jobs were free
// rides on the memoised cache.
func reportJobs(reports []bench.JobReport, elapsed time.Duration) {
	if len(reports) == 0 {
		return
	}
	t := &stats.Table{
		Title: "driver jobs (host time)",
		Cols:  []string{"job", "bench", "config", "threads", "class", "queue_ms", "wall_ms", "shared"},
	}
	var simWall time.Duration
	shared := 0
	for i, rep := range reports {
		if rep.Shared {
			shared++
		} else {
			simWall += rep.Wall
		}
		t.AddRow(fmt.Sprintf("%d", i),
			rep.Job.Bench, rep.Job.Spec.String(),
			fmt.Sprintf("%d", rep.Job.Params.Threads), rep.Job.Params.Class.Name,
			fmt.Sprintf("%.1f", float64(rep.QueueWait.Microseconds())/1e3),
			fmt.Sprintf("%.1f", float64(rep.Wall.Microseconds())/1e3),
			fmt.Sprintf("%v", rep.Shared))
	}
	t.Render(os.Stdout)
	fmt.Printf("\n%d jobs (%d shared via memoisation), simulated %.2fs of host work in %.2fs elapsed (%.2fx)\n",
		len(reports), shared, simWall.Seconds(), elapsed.Seconds(),
		simWall.Seconds()/elapsed.Seconds())
}

// writeDriverMetrics exports the driver's own execution profile — not
// simulated results — as driver.prom and driver.json under dir.
func writeDriverMetrics(dir string, reports []bench.JobReport, elapsed time.Duration, exp string, p bench.Params) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	jobsTotal := reg.Counter("acrbench_jobs_total",
		"RunAll jobs executed by the driver.", "shared")
	wallTotal := reg.Counter("acrbench_job_wall_seconds_total",
		"Host wall time inside simulation calls, per benchmark.", "bench")
	wallHist := reg.Histogram("acrbench_job_wall_seconds",
		"Per-job host wall time.", []float64{0.001, 0.01, 0.1, 1, 10, 60})
	queueHist := reg.Histogram("acrbench_job_queue_wait_seconds",
		"Per-job queue wait before a worker picked it up.", []float64{0.001, 0.01, 0.1, 1, 10, 60})
	for _, rep := range reports {
		jobsTotal.With(fmt.Sprintf("%v", rep.Shared)).Add(1)
		wallTotal.With(rep.Job.Bench).Add(rep.Wall.Seconds())
		wallHist.Observe(rep.Wall.Seconds())
		queueHist.Observe(rep.QueueWait.Seconds())
	}
	reg.Gauge("acrbench_elapsed_seconds", "Driver wall time.").Set(elapsed.Seconds())

	pf, err := os.Create(filepath.Join(dir, "driver.prom"))
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(pf); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}
	meta := map[string]string{
		"exp":     exp,
		"class":   p.Class.Name,
		"threads": strconv.Itoa(p.Threads),
	}
	jf, err := os.Create(filepath.Join(dir, "driver.json"))
	if err != nil {
		return err
	}
	if err := telemetry.WriteProfile(jf, meta, reg); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acrbench:", err)
	os.Exit(1)
}
