// Command acrbench regenerates the paper's tables and figures.
//
// Usage:
//
//	acrbench [-exp all|tableI|fig1|fig6|fig7|fig8|fig9|tableII|fig10|fig11|fig12|fig13|scal]
//	         [-threads N] [-class S|W|A]
//
// Each experiment prints the same rows/series the paper reports (absolute
// numbers differ — the substrate is a simulator, not the authors' testbed —
// but the shape is the reproduction target; see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"acr/internal/bench"
	"acr/internal/stats"
	"acr/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma separated), 'all' (paper set), or 'ablations'")
	threads := flag.Int("threads", 8, "thread/core count")
	class := flag.String("class", "W", "problem class (S, W, A)")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jobs := flag.Int("j", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	cl, err := workloads.ClassByName(*class)
	if err != nil {
		fatal(err)
	}
	p := bench.Params{Threads: *threads, Class: cl}
	r := bench.NewRunner()
	r.Workers = *jobs

	type gen func() (*stats.Table, error)
	experiments := []struct {
		name string
		run  gen
	}{
		{"tableI", func() (*stats.Table, error) { return bench.TableI(), nil }},
		{"fig1", func() (*stats.Table, error) { return bench.Fig1(10), nil }},
		{"fig6", func() (*stats.Table, error) { return r.Fig6(p) }},
		{"fig7", func() (*stats.Table, error) { return r.Fig7(p) }},
		{"fig8", func() (*stats.Table, error) { return r.Fig8(p) }},
		{"fig9", func() (*stats.Table, error) { return r.Fig9(p) }},
		{"tableII", func() (*stats.Table, error) { return r.TableII(p) }},
		{"fig10", func() (*stats.Table, error) { return r.Fig10(p, "bt") }},
		{"fig11", func() (*stats.Table, error) { return r.Fig11(p) }},
		{"fig12", func() (*stats.Table, error) { return r.Fig12(p) }},
		{"fig13", func() (*stats.Table, error) { return r.Fig13(p) }},
		{"scal", func() (*stats.Table, error) { return r.Scalability(p) }},
		{"abl-policy", func() (*stats.Table, error) { return r.AblationPolicy(p) }},
		{"abl-addrmap", func() (*stats.Table, error) { return r.AblationAddrMap(p) }},
		{"abl-detect", func() (*stats.Table, error) { return r.AblationDetect(p) }},
		{"abl-adaptive", func() (*stats.Table, error) { return r.AblationAdaptive(p) }},
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(name)] = true
	}
	matched := 0
	for _, e := range experiments {
		isAblation := strings.HasPrefix(e.name, "abl-")
		switch {
		case want[e.name]:
		case want["all"] && !isAblation:
		case want["ablations"] && isAblation:
		default:
			continue
		}
		matched++
		t, err := e.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.name, err))
		}
		if *asCSV {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}
	if matched == 0 {
		fatal(fmt.Errorf("no experiment matches %q", *exp))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acrbench:", err)
	os.Exit(1)
}
