// Command slicedump demonstrates the compiler-pass half of ACR: it builds
// the paper's Fig. 3 running example (the sumArr store), derives the static
// backward slice, and shows how loads are cut out of it to form the ACR
// Slice with buffered inputs. With -bench it instead disassembles one of
// the NAS-like kernels and slices every store in the unrolled window.
//
// With -verify, every derived slice is additionally run through the
// analysis.Verifier replay-safety proof; the process exits non-zero if any
// slice is unsound, so the command doubles as a soundness gate. For -bench
// kernels, -verify also surfaces the auto checkpoint strategy's static site
// plan: how many ASSOC-ADDR sites are pruned, boosted or left to the
// dynamic policy, with one advisory line per non-default decision.
package main

import (
	"flag"
	"fmt"
	"os"

	"acr/internal/analysis"
	"acr/internal/isa"
	"acr/internal/slice"
	"acr/internal/workloads"
)

func main() {
	benchName := flag.String("bench", "", "disassemble and slice a benchmark kernel instead of the Fig. 3 example")
	threads := flag.Int("threads", 2, "thread count for -bench")
	maxStores := flag.Int("stores", 8, "number of stores to slice for -bench")
	verify := flag.Bool("verify", false, "prove each slice replay-safe; exit 1 if any is unsound")
	flag.Parse()

	if *benchName == "" {
		os.Exit(fig3(*verify))
	}
	bench, err := workloads.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicedump:", err)
		os.Exit(1)
	}
	p, err := bench.Build(*threads, workloads.ClassS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicedump:", err)
		os.Exit(1)
	}
	fmt.Printf("kernel %s: %d instructions, %d data words\n\n", p.Name, len(p.Code), p.DataWords)
	var v *analysis.Verifier
	if *verify {
		if v, err = analysis.NewVerifier(p.Code, p.Entry); err != nil {
			fmt.Fprintln(os.Stderr, "slicedump:", err)
			os.Exit(1)
		}
	}
	shown, unsound := 0, 0
	for i, in := range p.Code {
		if in.Op != isa.ST || shown >= *maxStores {
			continue
		}
		s, err := slice.Backward(p.Code, i)
		if err != nil {
			continue
		}
		fmt.Printf("store at pc %d: %v — backward slice %d instrs, %d buffered inputs\n",
			i, in, s.Len(), s.NumInputs())
		if v != nil {
			if err := v.Verify(s); err != nil {
				unsound++
				fmt.Printf("  UNSOUND: %v\n", err)
			} else {
				fmt.Println("  sound: replay-safe")
			}
		}
		shown++
	}
	if v != nil {
		plan, err := analysis.PlanCheckpointSites(p.Code, p.Entry, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slicedump:", err)
			os.Exit(1)
		}
		fmt.Printf("\nauto site plan: %d assoc-addr sites — %d verified replay-safe, %d boosted, %d pruned, %d defaulted\n",
			plan.Sites, plan.Verified, plan.Boosted, plan.Pruned, plan.Defaulted)
		diags, err := analysis.AutoPlanDiags(p.Code, p.Entry, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slicedump:", err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Printf("  %s\n", d)
		}
	}
	if unsound > 0 {
		fmt.Fprintf(os.Stderr, "slicedump: %d of %d slices are not replay-safe\n", unsound, shown)
		os.Exit(1)
	}
}

// fig3 reproduces the paper's running example: sumArr computed from i and j
// (Fig. 3(a-d)). The loop is shown unrolled once, as footnote 1 prescribes.
// It returns the process exit code.
func fig3(verify bool) int {
	// Fig. 3(a) pseudo-code, one unrolled iteration:
	//   i, j loaded from memory; sumArr = i*i + (j << 1); store sumArr.
	code := []isa.Instr{
		{Op: isa.LD, Rd: 1, Rs: 10, Imm: 0},  // load i
		{Op: isa.LD, Rd: 2, Rs: 10, Imm: 1},  // load j
		{Op: isa.MUL, Rd: 3, Rs: 1, Rt: 1},   // i*i
		{Op: isa.SHLI, Rd: 4, Rs: 2, Imm: 1}, // j<<1
		{Op: isa.LD, Rd: 7, Rs: 10, Imm: 2},  // unrelated load
		{Op: isa.ADD, Rd: 5, Rs: 3, Rt: 4},   // sumArr
		{Op: isa.ADDI, Rd: 8, Rs: 7, Imm: 1}, // unrelated arithmetic
		{Op: isa.ST, Rs: 11, Rt: 5, Imm: 0},  // store sumArr
	}
	fmt.Println("Fig. 3(b): backward slice of the sumArr store over the unrolled window")
	fmt.Println("  [S] slice member (arithmetic/logic)  [I] input load (cut, buffered)  [ST] the store")
	fmt.Println()
	s, err := slice.Backward(code, 7)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicedump:", err)
		return 1
	}
	fmt.Print(s.Render(code))
	fmt.Println()
	fmt.Printf("Fig. 3(d): the ACR Slice has %d instructions and %d buffered inputs;\n", s.Len(), s.NumInputs())
	fmt.Println("loads are not part of the Slice — their values are captured in the")
	fmt.Println("input-operand buffer when ASSOC-ADDR retires (paper §III-A). The store")
	fmt.Println("itself is re-executed during recovery to re-establish a consistent line.")
	if verify {
		if err := analysis.VerifyStatic(code, s); err != nil {
			fmt.Fprintln(os.Stderr, "slicedump: UNSOUND:", err)
			return 1
		}
		fmt.Println("\nverified: the slice is replay-safe (purity, dominance, closure,")
		fmt.Println("address determinism and no-clobber all hold).")
	}

	// Show the runtime view too: what the tracker derives and the
	// recovery handler would evaluate.
	tr := slice.NewTracker(1)
	regs := make([]int64, isa.NumRegs)
	mem := map[int64]int64{0: 6, 1: 5, 2: 99}
	for _, in := range code {
		switch {
		case in.Op == isa.LD:
			v := mem[in.Imm]
			regs[in.Rd] = v
			tr.OnLoad(0, in.Rd, v)
		case in.Op.IsALU():
			regs[in.Rd] = isa.EvalALU(in.Op, regs[in.Rs], regs[in.Rt], regs[in.Rd], in.Imm)
			tr.OnALU(0, in)
		}
	}
	c, ok := tr.Compile(0, tr.Recipe(0, 5), 10)
	if !ok {
		fmt.Fprintln(os.Stderr, "slicedump: slice did not compile")
		return 1
	}
	fmt.Printf("\nruntime Slice for sumArr (i=6, j=5), as evaluated during recovery:\n%s", c)
	fmt.Printf("recomputed value: %d (expected %d)\n", c.Eval(nil), 6*6+(5<<1))
	return 0
}
