package main

import (
	"testing"

	"acr/internal/bench"
	"acr/internal/ckpt"
)

// TestParseSpecRoundTrip: every renderable configuration name must parse
// back to a spec that renders the same name — the CLI accepts exactly what
// the tables print.
func TestParseSpecRoundTrip(t *testing.T) {
	for _, kind := range ckpt.Kinds() {
		for _, errs := range []int{0, 1} {
			for _, local := range []bool{false, true} {
				spec := bench.Spec{Ckpt: true, Strategy: kind, Errors: errs, Local: local}
				name := spec.String()
				parsed, err := parseSpec(name)
				if err != nil {
					t.Errorf("parseSpec(%q): %v", name, err)
					continue
				}
				if got := parsed.String(); got != name {
					t.Errorf("parseSpec(%q) renders %q", name, got)
				}
				if parsed.Kind() != kind {
					t.Errorf("parseSpec(%q).Kind() = %v, want %v", name, parsed.Kind(), kind)
				}
				if (parsed.Errors > 0) != (errs > 0) || parsed.Local != local {
					t.Errorf("parseSpec(%q) = %+v, want errors=%d local=%v",
						name, parsed, errs, local)
				}
			}
		}
	}
}

// TestParseSpecLegacyAliases: the historical flat spellings keep parsing.
func TestParseSpecLegacyAliases(t *testing.T) {
	cases := map[string]string{
		"nockpt":        "NoCkpt",
		"NoCkpt":        "NoCkpt",
		"ckptne":        "Ckpt_NE",
		"ckpte":         "Ckpt_E",
		"reckptne":      "ReCkpt_NE",
		"reckpteloc":    "ReCkpt_E,Loc",
		"ckptneloc":     "Ckpt_NE,Loc",
		"ReCkpt_NE,Loc": "ReCkpt_NE,Loc",
		"TierCkpt_NE":   "TierCkpt_NE",
		"diffckptne":    "DiffCkpt_NE",
		"autockpte":     "AutoCkpt_E",
	}
	for in, want := range cases {
		spec, err := parseSpec(in)
		if err != nil {
			t.Errorf("parseSpec(%q): %v", in, err)
			continue
		}
		if got := spec.String(); got != want {
			t.Errorf("parseSpec(%q) renders %q, want %q", in, got, want)
		}
	}
}

// TestParseSpecRejectsGarbage: malformed names fail rather than silently
// selecting a default configuration.
func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "ckpt", "reckpt_x", "megackpt_ne", "ckpt_ne,remote"} {
		if _, err := parseSpec(in); err == nil {
			t.Errorf("parseSpec(%q) accepted", in)
		}
	}
}

// TestStrategyFlagParsesEveryKind: the -strategy flag accepts every kind
// name and the documented aliases, and rejects unknowns — the CLI half of
// the -list-strategies contract.
func TestStrategyFlagParsesEveryKind(t *testing.T) {
	for _, kind := range ckpt.Kinds() {
		got, err := ckpt.ParseKind(kind.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", kind, err)
		} else if got != kind {
			t.Errorf("ParseKind(%q) = %v", kind, got)
		}
	}
	for alias, want := range map[string]ckpt.Kind{
		"diff": ckpt.KindDifferential,
		"tier": ckpt.KindTiered,
	} {
		if got, err := ckpt.ParseKind(alias); err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", alias, got, err, want)
		}
	}
	if _, err := ckpt.ParseKind("quantum"); err == nil {
		t.Error("ParseKind accepted an unknown strategy")
	}
	for _, kind := range ckpt.Kinds() {
		if kind.Describe() == "unknown" || kind.Describe() == "" {
			t.Errorf("strategy %v lacks a description", kind)
		}
	}
}
