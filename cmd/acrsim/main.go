// Command acrsim runs one benchmark under one of the paper's
// configurations and reports the run summary.
//
// Usage:
//
//	acrsim -bench is [-config ReCkpt_E] [-threads 8] [-class W]
//	       [-ckpts 25] [-errors 1] [-threshold 0] [-v]
//
// The configuration names follow the paper (§IV): NoCkpt, Ckpt_NE, Ckpt_E,
// ReCkpt_NE, ReCkpt_E and their ",Loc" coordinated-local variants.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"acr/internal/bench"
	"acr/internal/workloads"
)

func main() {
	benchName := flag.String("bench", "is", "benchmark: "+strings.Join(workloads.Names(), ", "))
	config := flag.String("config", "ReCkpt_NE", "configuration (paper §IV), e.g. NoCkpt, Ckpt_NE, ReCkpt_E, ReCkpt_NE,Loc")
	threads := flag.Int("threads", 8, "thread/core count")
	class := flag.String("class", "W", "problem class (S, W, A)")
	ckpts := flag.Int("ckpts", 0, "checkpoints per run (0 = paper default 25)")
	errs := flag.Int("errors", 0, "override error count for _E configurations")
	threshold := flag.Int("threshold", 0, "Slice-length threshold override (0 = benchmark default)")
	verbose := flag.Bool("v", false, "print checkpoint interval details")
	flag.Parse()

	cl, err := workloads.ClassByName(*class)
	if err != nil {
		fatal(err)
	}
	spec, err := parseSpec(*config)
	if err != nil {
		fatal(err)
	}
	spec.NumCkpts = *ckpts
	spec.Threshold = *threshold
	if *errs > 0 {
		spec.Errors = *errs
	}

	p := bench.Params{Threads: *threads, Class: cl}
	r := bench.NewRunner()
	// The NoCkpt baseline and the configured run go through the parallel
	// driver; the memoising cache deduplicates the baseline the
	// checkpointed run calibrates against.
	out, err := r.RunAll([]bench.Job{
		{Bench: *benchName, Params: p, Spec: bench.NoCkpt},
		{Bench: *benchName, Params: p, Spec: spec},
	})
	if err != nil {
		fatal(err)
	}
	base, res := out[0], out[1]

	fmt.Printf("benchmark    %s (class %s, %d threads)\n", *benchName, cl.Name, *threads)
	fmt.Printf("config       %s\n", spec)
	fmt.Printf("cycles       %d\n", res.Cycles)
	fmt.Printf("instructions %d\n", res.Instrs)
	fmt.Printf("energy       %.3f uJ (dynamic %.3f uJ)\n", res.EnergyPJ/1e6, res.DynamicPJ/1e6)
	fmt.Printf("EDP          %.3e pJ*cyc\n", res.EDP())
	if spec.Ckpt {
		fmt.Printf("time ovh     %.2f%% vs NoCkpt\n",
			100*(float64(res.Cycles)-float64(base.Cycles))/float64(base.Cycles))
		fmt.Printf("energy ovh   %.2f%% vs NoCkpt\n",
			100*(res.EnergyPJ-base.EnergyPJ)/base.EnergyPJ)
		fmt.Printf("checkpoints  %d   recoveries %d\n", res.Ckpt.Checkpoints, res.Ckpt.Recoveries)
		fmt.Printf("logged words %d   omitted words %d", res.Ckpt.LoggedWords, res.Ckpt.OmittedWords)
		if total := res.Ckpt.LoggedWords + res.Ckpt.OmittedWords; total > 0 {
			fmt.Printf(" (%.2f%% of checkpointable volume omitted)",
				100*float64(res.Ckpt.OmittedWords)/float64(total))
		}
		fmt.Println()
		if res.Ckpt.Recoveries > 0 {
			fmt.Printf("restored     %d words, %d recomputed along Slices\n",
				res.Ckpt.RestoredWords, res.Ckpt.RecomputedWords)
		}
	}
	if spec.Amnesic {
		am := res.AddrMap
		fmt.Printf("AddrMap      %d inserts, %d too-long, %d hits/%d lookups, peak %d records / %d input words\n",
			am.Inserts, am.SliceTooLong, am.Hits, am.Lookups, am.PeakOccupancy, am.PeakInputWords)
	}
	if *verbose && len(res.Intervals) > 0 {
		fmt.Println("\ninterval  baseline-size  logged  omitted  reduction%")
		for i, iv := range res.Intervals {
			red := 0.0
			if iv.Size() > 0 {
				red = 100 * float64(iv.Omitted) / float64(iv.Size())
			}
			fmt.Printf("%8d  %13d  %6d  %7d  %10.2f\n", i+1, iv.Size(), iv.Logged, iv.Omitted, red)
		}
	}
}

func parseSpec(name string) (bench.Spec, error) {
	switch strings.ToLower(strings.ReplaceAll(name, " ", "")) {
	case "nockpt":
		return bench.NoCkpt, nil
	case "ckpt_ne", "ckptne":
		return bench.CkptNE, nil
	case "ckpt_e", "ckpte":
		return bench.CkptE, nil
	case "reckpt_ne", "reckptne":
		return bench.ReCkptNE, nil
	case "reckpt_e", "reckpte":
		return bench.ReCkptE, nil
	case "ckpt_ne,loc", "ckptneloc":
		return bench.CkptNELoc, nil
	case "ckpt_e,loc", "ckpteloc":
		return bench.CkptELoc, nil
	case "reckpt_ne,loc", "reckptneloc":
		return bench.ReCkptNELoc, nil
	case "reckpt_e,loc", "reckpteloc":
		return bench.ReCkptELoc, nil
	}
	return bench.Spec{}, fmt.Errorf("unknown configuration %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acrsim:", err)
	os.Exit(1)
}
