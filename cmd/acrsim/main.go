// Command acrsim runs one benchmark under one of the paper's
// configurations and reports the run summary.
//
// Usage:
//
//	acrsim -bench is [-config ReCkpt_E] [-strategy auto] [-threads 8]
//	       [-class W] [-ckpts 25] [-errors 1] [-threshold 0] [-workers 1]
//	       [-compile off] [-v] [-trace out.json] [-metrics out.prom]
//	       [-profile out.json] [-serve ADDR] [-journal runs.jsonl]
//	       [-linger DUR]
//	acrsim -list-strategies
//
// The configuration names follow the paper (§IV): NoCkpt, Ckpt_NE, Ckpt_E,
// ReCkpt_NE, ReCkpt_E and their ",Loc" coordinated-local variants, plus the
// strategy-engine spellings DiffCkpt_*, TierCkpt_* and AutoCkpt_*.
// -strategy overrides the scheme while keeping the -config modifiers, so
// `-config Ckpt_E -strategy tiered` runs TierCkpt_E; -list-strategies
// prints the available schemes and exits.
//
// -workers N with N > 1 executes each simulated machine through the
// deterministic parallel engine (conflict-checked speculative rounds,
// bit-identical to serial execution); 0 means GOMAXPROCS. The telemetry
// replay always runs serially, so exporting with -workers > 1 doubles as a
// parallel-vs-serial determinism cross-check.
//
// -compile selects the block-compilation execution engine (internal/cpu's
// flat micro-op streams): off (default), on, or auto. The engine is
// bit-identical to the interpreter; the knob trades nothing but wall
// clock. "on" is rejected with -workers > 1 — the parallel engine's
// speculative rounds bypass block compilation — while "auto" compiles
// exactly the serial executions and is valid with any worker count.
//
// -trace writes the run's cycle-domain timeline as Chrome trace-event JSON
// (load it at https://ui.perfetto.dev), -metrics writes a Prometheus text
// exposition and -profile a self-describing JSON run profile. Telemetry
// observes a deterministic replay of the configured run, so the reported
// summary is bit-identical with or without these flags.
//
// -serve starts the HTTP observatory (internal/obsrv): the baseline and
// configured runs register in the live run registry with flight recorders,
// browsable at /runs and streamed at /runs/{key}/events; -journal appends
// the registry's JSONL journal and -linger keeps the observatory up after
// the run so it can be scraped.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"acr/internal/bench"
	"acr/internal/ckpt"
	"acr/internal/obsrv"
	"acr/internal/sim"
	"acr/internal/telemetry"
	"acr/internal/workloads"
)

func main() {
	benchName := flag.String("bench", "is", "benchmark: "+strings.Join(workloads.Names(), ", "))
	config := flag.String("config", "ReCkpt_NE", "configuration (paper §IV), e.g. NoCkpt, Ckpt_NE, ReCkpt_E, ReCkpt_NE,Loc")
	threads := flag.Int("threads", 8, "thread/core count")
	class := flag.String("class", "W", "problem class (S, W, A)")
	ckpts := flag.Int("ckpts", 0, "checkpoints per run (0 = paper default 25)")
	errs := flag.Int("errors", 0, "override error count for _E configurations")
	threshold := flag.Int("threshold", 0, "Slice-length threshold override (0 = benchmark default)")
	workers := flag.Int("workers", 1, "intra-run simulation workers (>1 = parallel engine, bit-identical to serial; 0 = GOMAXPROCS)")
	compileFlag := flag.String("compile", "off", "block-compilation engine: off|on|auto (bit-identical to the interpreter; on requires -workers 1, auto compiles serial executions only)")
	coalesce := flag.Bool("coalesce", true, "scheduler quantum coalescing (bit-identical to the flat scheduler; only wall clock changes)")
	strategy := flag.String("strategy", "", "checkpoint-strategy override: full|amnesic|differential|tiered|auto (aliases: diff, tier); keeps -config's _E/,Loc modifiers")
	listStrategies := flag.Bool("list-strategies", false, "list the checkpoint strategies and exit")
	verbose := flag.Bool("v", false, "print checkpoint interval details")
	traceOut := flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to this file")
	metricsOut := flag.String("metrics", "", "write Prometheus text exposition to this file")
	profileOut := flag.String("profile", "", "write JSON run profile to this file")
	serveAddr := flag.String("serve", "", "serve the HTTP observatory (/metrics, /runs, /debug/pprof) on this address")
	journalPath := flag.String("journal", "", "append the run registry's JSONL journal to this file (requires -serve)")
	linger := flag.Duration("linger", 0, "keep the observatory serving this long after the run finishes")
	flag.Parse()

	if *listStrategies {
		for _, k := range ckpt.Kinds() {
			fmt.Printf("%-13s %s\n", k, k.Describe())
		}
		return
	}

	cl, err := workloads.ClassByName(*class)
	if err != nil {
		fatal(err)
	}
	spec, err := parseSpec(*config)
	if err != nil {
		fatal(err)
	}
	if *strategy != "" {
		kind, err := ckpt.ParseKind(*strategy)
		if err != nil {
			fatal(err)
		}
		spec.Ckpt = true
		spec.Strategy = kind
		spec.Amnesic = kind.Amnesic()
	}
	spec.NumCkpts = *ckpts
	spec.Threshold = *threshold
	if *errs > 0 {
		spec.Errors = *errs
	}

	simWorkers := *workers
	if simWorkers == 0 {
		simWorkers = runtime.GOMAXPROCS(0)
	}
	compileMode, err := bench.ParseCompileMode(*compileFlag)
	if err != nil {
		fatal(err)
	}
	simCompile, err := compileMode.Resolve(simWorkers)
	if err != nil {
		fatal(err)
	}

	p := bench.Params{Threads: *threads, Class: cl}
	r := bench.NewRunner()
	r.SimWorkers = simWorkers
	r.SimCompile = simCompile
	r.SimCoalesce = *coalesce

	var registry *obsrv.Registry
	var server *obsrv.Server
	if *serveAddr != "" {
		registry, err = obsrv.NewRegistry(obsrv.Options{JournalPath: *journalPath})
		if err != nil {
			fatal(err)
		}
		defer registry.Close()
		if *journalPath != "" {
			if err := registry.LoadJournal(*journalPath); err != nil {
				fatal(err)
			}
		}
		server = obsrv.NewServer(registry)
		addr, err := server.Start(*serveAddr)
		if err != nil {
			fatal(err)
		}
		defer server.Close()
		fmt.Fprintf(os.Stderr, "acrsim: observatory listening on http://%s\n", addr)
		r.Lifecycle = registry
	}
	// The NoCkpt baseline and the configured run go through the parallel
	// driver; the memoising cache deduplicates the baseline the
	// checkpointed run calibrates against.
	out, err := r.RunAll([]bench.Job{
		{Bench: *benchName, Params: p, Spec: bench.NoCkpt},
		{Bench: *benchName, Params: p, Spec: spec},
	})
	if err != nil {
		fatal(err)
	}
	base, res := out[0], out[1]

	if *traceOut != "" || *metricsOut != "" || *profileOut != "" {
		if err := exportTelemetry(r, *benchName, p, spec, res, simWorkers,
			*traceOut, *metricsOut, *profileOut); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("benchmark    %s (class %s, %d threads)\n", *benchName, cl.Name, *threads)
	fmt.Printf("config       %s\n", spec)
	if spec.Ckpt {
		fmt.Printf("strategy     %s\n", spec.Kind())
	}
	fmt.Printf("cycles       %d\n", res.Cycles)
	fmt.Printf("instructions %d\n", res.Instrs)
	fmt.Printf("energy       %.3f uJ (dynamic %.3f uJ)\n", res.EnergyPJ/1e6, res.DynamicPJ/1e6)
	fmt.Printf("EDP          %.3e pJ*cyc\n", res.EDP())
	if spec.Ckpt {
		fmt.Printf("time ovh     %.2f%% vs NoCkpt\n",
			100*(float64(res.Cycles)-float64(base.Cycles))/float64(base.Cycles))
		fmt.Printf("energy ovh   %.2f%% vs NoCkpt\n",
			100*(res.EnergyPJ-base.EnergyPJ)/base.EnergyPJ)
		fmt.Printf("checkpoints  %d   recoveries %d\n", res.Ckpt.Checkpoints, res.Ckpt.Recoveries)
		fmt.Printf("logged words %d   omitted words %d", res.Ckpt.LoggedWords, res.Ckpt.OmittedWords)
		if total := res.Ckpt.LoggedWords + res.Ckpt.OmittedWords; total > 0 {
			fmt.Printf(" (%.2f%% of checkpointable volume omitted)",
				100*float64(res.Ckpt.OmittedWords)/float64(total))
		}
		fmt.Println()
		if res.Ckpt.DeltaWords > 0 {
			fmt.Printf("delta words  %d sealed per-epoch\n", res.Ckpt.DeltaWords)
		}
		if res.Ckpt.FastLogWords > 0 {
			fmt.Printf("fast tier    %d words logged, %d demoted to DRAM\n",
				res.Ckpt.FastLogWords, res.Ckpt.DemotedWords)
		}
		if res.Ckpt.MultiSnapshotRollbacks > 0 {
			fmt.Printf("rollbacks    %d spanning multiple checkpoints (max depth %d)\n",
				res.Ckpt.MultiSnapshotRollbacks, res.Ckpt.MaxRollbackDepth)
		}
		if res.Ckpt.Recoveries > 0 {
			fmt.Printf("restored     %d words, %d recomputed along Slices\n",
				res.Ckpt.RestoredWords, res.Ckpt.RecomputedWords)
		}
	}
	if spec.Amnesic {
		am := res.AddrMap
		fmt.Printf("AddrMap      %d inserts, %d too-long, %d hits/%d lookups, peak %d records / %d input words\n",
			am.Inserts, am.SliceTooLong, am.Hits, am.Lookups, am.PeakOccupancy, am.PeakInputWords)
	}
	if *verbose && len(res.Intervals) > 0 {
		fmt.Println("\ninterval  baseline-size  logged  omitted  reduction%")
		for i, iv := range res.Intervals {
			red := 0.0
			if iv.Size() > 0 {
				red = 100 * float64(iv.Omitted) / float64(iv.Size())
			}
			fmt.Printf("%8d  %13d  %6d  %7d  %10.2f\n", i+1, iv.Size(), iv.Logged, iv.Omitted, red)
		}
	}
	if server != nil && *linger > 0 {
		fmt.Fprintf(os.Stderr, "acrsim: run done, observatory lingering for %v\n", *linger)
		time.Sleep(*linger)
	}
}

// exportTelemetry replays the configured run once with a metrics Collector
// and (optionally) a Chrome tracer attached, then writes the requested
// artifacts. The replay reuses the calibrated period from the memoised run
// and always executes serially (the serial scheduler is the determinism
// oracle), so it must be bit-identical to the summary already printed —
// whatever worker count produced that summary. A divergence is a
// determinism bug — with mainWorkers > 1, specifically a parallel-engine
// bug — and aborts the export rather than silently emitting a profile of a
// different execution.
func exportTelemetry(r *bench.Runner, benchName string, p bench.Params, spec bench.Spec,
	want sim.Result, mainWorkers int, traceOut, metricsOut, profileOut string) error {
	reg := telemetry.NewRegistry()
	col := telemetry.NewCollector(reg)
	obs := []sim.Observer{col, telemetry.NewSchedCollector(reg)}

	var tracer *telemetry.Tracer
	if traceOut != "" {
		tf, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer tf.Close()
		tracer = telemetry.NewTracer(tf, p.Threads)
		obs = append(obs, tracer)
	}

	res, err := r.RunObserved(benchName, p, spec, obs...)
	if err != nil {
		return err
	}
	if res.Cycles != want.Cycles || res.Instrs != want.Instrs {
		return fmt.Errorf("telemetry replay (workers=1) diverged from the reported run (workers=%d): %d cycles / %d instrs, want %d / %d — determinism bug, export aborted",
			mainWorkers, res.Cycles, res.Instrs, want.Cycles, want.Instrs)
	}
	col.ObserveResult(res)

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace %s: %w", traceOut, err)
		}
	}
	if metricsOut != "" {
		if err := writeFile(metricsOut, reg.WritePrometheus); err != nil {
			return err
		}
	}
	if profileOut != "" {
		meta := map[string]string{
			"bench":   benchName,
			"class":   p.Class.Name,
			"threads": strconv.Itoa(p.Threads),
			"config":  spec.String(),
		}
		return writeFile(profileOut, func(w io.Writer) error {
			return telemetry.WriteProfile(w, meta, reg)
		})
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

// specPrefixes maps a configuration-name prefix to its checkpoint strategy.
// The full grammar is <prefix>_NE|_E[,Loc]; underscores and the ",Loc" comma
// are optional, matching the paper's spelling and the older flat aliases
// (ckptneloc etc.).
var specPrefixes = map[string]ckpt.Kind{
	"ckpt":     ckpt.KindFull,
	"reckpt":   ckpt.KindAmnesic,
	"diffckpt": ckpt.KindDifferential,
	"tierckpt": ckpt.KindTiered,
	"autockpt": ckpt.KindAuto,
}

func parseSpec(name string) (bench.Spec, error) {
	n := strings.ToLower(strings.ReplaceAll(name, " ", ""))
	if n == "nockpt" {
		return bench.NoCkpt, nil
	}
	spec := bench.Spec{Ckpt: true}
	if rest, ok := strings.CutSuffix(n, ",loc"); ok {
		spec.Local = true
		n = rest
	} else if rest, ok := strings.CutSuffix(n, "loc"); ok {
		spec.Local = true
		n = rest
	}
	switch {
	case strings.HasSuffix(n, "_ne"):
		n = strings.TrimSuffix(n, "_ne")
	case strings.HasSuffix(n, "ne"):
		n = strings.TrimSuffix(n, "ne")
	case strings.HasSuffix(n, "_e"):
		spec.Errors = 1
		n = strings.TrimSuffix(n, "_e")
	case strings.HasSuffix(n, "e"):
		spec.Errors = 1
		n = strings.TrimSuffix(n, "e")
	default:
		return bench.Spec{}, fmt.Errorf("configuration %q lacks an _NE/_E suffix", name)
	}
	kind, ok := specPrefixes[n]
	if !ok {
		return bench.Spec{}, fmt.Errorf("unknown configuration %q", name)
	}
	spec.Strategy = kind
	spec.Amnesic = kind.Amnesic()
	return spec, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acrsim:", err)
	os.Exit(1)
}
