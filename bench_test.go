// Package acr's top-level benchmarks regenerate every table and figure of
// the paper's evaluation. Run them with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment and reports the headline metric
// the paper quotes via b.ReportMetric, alongside the generated table on
// -v output through the acrbench command. The benchmarks run at class S so
// the whole suite finishes in minutes; cmd/acrbench reproduces the same
// tables at the paper scale (class W, the default).
package acr_test

import (
	"strconv"
	"testing"

	"acr/internal/bench"
	"acr/internal/stats"
	"acr/internal/workloads"
)

func params() bench.Params {
	return bench.Params{Threads: 8, Class: workloads.ClassS}
}

// sharedRunner memoises runs across benchmarks within one `go test -bench`
// invocation, mirroring how figures 6-8 share the same executions.
var sharedRunner = bench.NewRunner()

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.TableI()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1ErrorRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Fig1(10)
		if len(t.Rows) != 11 {
			b.Fatal("wrong generation count")
		}
	}
}

// avgOf extracts the mean reduction from the last row of a figure table.
func avgOf(b *testing.B, t *stats.Table, col int) float64 {
	b.Helper()
	last := t.Rows[len(t.Rows)-1]
	v, err := strconv.ParseFloat(last[col], 64)
	if err != nil {
		b.Fatalf("cannot parse avg %q: %v", last[col], err)
	}
	return v
}

func BenchmarkFig6TimeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sharedRunner.Fig6(params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(b, t, 5), "avg-time-ovh-reduction-%")
	}
}

func BenchmarkFig7EnergyOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sharedRunner.Fig7(params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(b, t, 5), "avg-energy-ovh-reduction-%")
	}
}

func BenchmarkFig8EDPReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sharedRunner.Fig8(params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(b, t, 1), "avg-EDP-reduction-NE-%")
	}
}

func BenchmarkFig9CheckpointSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sharedRunner.Fig9(params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avgOf(b, t, 1), "avg-size-reduction-%")
	}
}

func BenchmarkTableIIThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sharedRunner.TableII(params())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 8 {
			b.Fatal("missing benchmarks")
		}
	}
}

func BenchmarkFig10SizeOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := sharedRunner.Fig10(params(), "bt")
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) < 10 {
			b.Fatalf("too few intervals: %d", len(t.Rows))
		}
	}
}

func BenchmarkFig11ErrorRateSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sharedRunner.Fig11(params()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12CheckpointFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sharedRunner.Fig12(params()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13LocalCheckpointing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sharedRunner.Fig13(params()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sharedRunner.Scalability(params()); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-benchmark single-run benchmarks: how fast the simulator itself is.
func BenchmarkSimulator(b *testing.B) {
	for _, name := range bench.BenchNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			var instrs int64
			for i := 0; i < b.N; i++ {
				r := bench.NewRunner() // no memoisation: measure the run
				res, err := r.Run(name, params(), bench.ReCkptNE)
				if err != nil {
					b.Fatal(err)
				}
				instrs = res.Instrs
			}
			b.ReportMetric(float64(instrs), "sim-instrs")
		})
	}
}
